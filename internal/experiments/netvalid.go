package experiments

import (
	"fmt"

	"repro/internal/core/conflict"
	"repro/internal/core/feasibility"
	"repro/internal/core/optimize"
	"repro/internal/measure"
	"repro/internal/probe"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// NetValidation is the prepared state of one §4.5 network-validation
// configuration: fixed ETT routes, per-link solo capacities and losses
// measured offline, and the pairwise LIR matrix over the used links.
type NetValidation struct {
	Config FlowConfig
	Net    *topology.Network

	Flows []measure.Flow
	Paths [][]int
	// Links are the directed links used by at least one flow; Routes
	// maps each flow to indices into Links.
	Links  []topology.Link
	Routes [][]int

	Caps []float64 // measured solo maxUDP per link
	Loss []float64 // measured solo network-layer loss per link
	LIR  [][]float64

	neighbours map[int][]int
	table      *routing.Table
}

// PrepareValidation probes for routing state, fixes ETT routes, and runs
// the offline measurement phases (solo activations and pairwise LIRs)
// that seed the model under test.
func PrepareValidation(cfg FlowConfig, sc Scale) (*NetValidation, error) {
	nw := cfg.Mesh()
	v := &NetValidation{Config: cfg, Net: nw}

	// Short probing phase for ETT metrics and neighbour discovery.
	period := probePeriodFor(cfg.Rate, sc)
	recs := make([]*probe.Recorder, len(nw.Nodes))
	probers := make([]*probe.Prober, len(nw.Nodes))
	for i, n := range nw.Nodes {
		recs[i] = probe.NewRecorder(n)
		probers[i] = probe.NewProber(nw.Sim, n, cfg.Rate, traffic.DefaultPayload)
		probers[i].SetPeriod(period)
		probers[i].Start()
		n.SetDefaultRate(cfg.Rate)
	}
	nw.Sim.Run(nw.Sim.Now() + sim.Time(120)*period)
	for _, p := range probers {
		p.Stop()
	}

	var metrics []routing.LinkMetric
	v.neighbours = make(map[int][]int)
	for dst, rec := range recs {
		for _, src := range rec.Senders() {
			est, ok := rec.Estimate(src, 100)
			if !ok {
				continue
			}
			metrics = append(metrics, routing.LinkMetric{
				Link:  topology.Link{Src: src, Dst: dst},
				PData: est.PData,
				PAck:  est.PAck,
				Rate:  cfg.Rate,
			})
			v.neighbours[dst] = append(v.neighbours[dst], src)
			v.neighbours[src] = append(v.neighbours[src], dst)
		}
	}
	v.table = routing.BuildTable(len(nw.Nodes), metrics, traffic.DefaultPayload)
	v.table.Install(nw.Nodes)

	// Resolve flow routes; keep flows with 1..MaxHops hops.
	index := map[topology.Link]int{}
	for _, f := range cfg.Flows {
		links := v.table.PathLinks(f.Src, f.Dst)
		if links == nil || len(links) > cfg.MaxHops {
			continue
		}
		v.Flows = append(v.Flows, f)
		v.Paths = append(v.Paths, v.table.Path(f.Src, f.Dst))
		var route []int
		for _, l := range links {
			li, ok := index[l]
			if !ok {
				li = len(v.Links)
				index[l] = li
				v.Links = append(v.Links, l)
				nw.SetRate(l, cfg.Rate)
			}
			route = append(route, li)
		}
		v.Routes = append(v.Routes, route)
	}
	if len(v.Flows) == 0 {
		return nil, fmt.Errorf("experiments: no routable flows in config %d", cfg.Seed)
	}

	// Solo activations: primary extreme points and losses.
	v.Caps = make([]float64, len(v.Links))
	v.Loss = make([]float64, len(v.Links))
	for i, l := range v.Links {
		r := measure.MaxUDP(nw, l, traffic.DefaultPayload, sc.PhaseDur)
		v.Caps[i] = r.ThroughputBps
		v.Loss[i] = r.LossRate
	}

	// Pairwise LIR matrix from simultaneous activations.
	v.LIR = make([][]float64, len(v.Links))
	for i := range v.LIR {
		v.LIR[i] = make([]float64, len(v.Links))
		v.LIR[i][i] = 1
	}
	for i := 0; i < len(v.Links); i++ {
		for j := i + 1; j < len(v.Links); j++ {
			if shareNode(v.Links[i], v.Links[j]) {
				// Same-node links trivially conflict (half duplex).
				v.LIR[i][j], v.LIR[j][i] = 0, 0
				continue
			}
			both := measure.Simultaneous(nw, []topology.Link{v.Links[i], v.Links[j]},
				traffic.DefaultPayload, sc.PhaseDur)
			lir := measure.LIRResult{
				C11: v.Caps[i], C22: v.Caps[j],
				C31: both[0].ThroughputBps, C32: both[1].ThroughputBps,
			}.LIR()
			v.LIR[i][j], v.LIR[j][i] = lir, lir
		}
	}

	// Measurement phases rewired some direct routes; restore the table.
	v.table.Install(nw.Nodes)
	return v, nil
}

func shareNode(a, b topology.Link) bool {
	return a.Src == b.Src || a.Src == b.Dst || a.Dst == b.Src || a.Dst == b.Dst
}

// LIRThreshold is the paper's operating point for the binary classifier.
const LIRThreshold = 0.95

// RegionLIR builds the feasibility region from the measured LIR matrix at
// the given threshold.
func (v *NetValidation) RegionLIR(threshold float64) *feasibility.Region {
	return feasibility.Build(v.Caps, conflict.FromLIR(v.LIR, threshold))
}

// RegionTwoHop builds the region from the online two-hop conflict model.
func (v *NetValidation) RegionTwoHop() *feasibility.Region {
	return feasibility.Build(v.Caps, conflict.TwoHop(v.Links, v.neighbours))
}

// PathLoss returns the measured solo residual loss along flow s's path.
func (v *NetValidation) PathLoss(s int) float64 {
	good := 1.0
	for _, li := range v.Routes[s] {
		good *= 1 - v.Loss[li]
	}
	return 1 - good
}

// InjectRun is the outcome of injecting one scaled rate vector.
type InjectRun struct {
	Scale    float64
	Target   []float64 // scaled estimated output rates y_s
	Achieved []float64
}

// OptimizeAndInject solves the utility maximization over region and
// injects the resulting input rates at each scaling factor, returning the
// achieved outputs (§4.5's test procedure).
func (v *NetValidation) OptimizeAndInject(region *feasibility.Region, obj optimize.Objective, scales []float64, sc Scale) ([]InjectRun, error) {
	y, err := optimize.Solve(&optimize.Problem{Region: region, Routes: v.Routes}, obj, optimize.Options{})
	if err != nil {
		return nil, err
	}
	runs := make([]InjectRun, 0, len(scales))
	for _, scale := range scales {
		xs := make([]float64, len(v.Flows))
		target := make([]float64, len(v.Flows))
		for s := range v.Flows {
			target[s] = y[s] * scale
			den := 1 - v.PathLoss(s)
			if den <= 0.05 {
				den = 0.05
			}
			xs[s] = target[s] / den
		}
		res := measure.InjectRates(v.Net, v.Flows, xs, traffic.DefaultPayload, sc.TrafficDur)
		achieved := make([]float64, len(res))
		for i, r := range res {
			achieved[i] = r.OutputBps
		}
		runs = append(runs, InjectRun{Scale: scale, Target: target, Achieved: achieved})
	}
	return runs, nil
}
