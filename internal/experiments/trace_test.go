package experiments

import (
	"bytes"
	"runtime"
	"testing"

	"repro/internal/broadcast"
	"repro/internal/experiments/exp"
	"repro/internal/scenario/sink"
	"repro/internal/trace"
)

// captureJSONL streams an experiment with per-link delivery capture
// enabled, under a pinned worker count.
func captureJSONL(t *testing.T, e exp.Experiment, seed int64, sc Scale, workers int) []byte {
	t.Helper()
	var buf bytes.Buffer
	withWorkers(workers, func() {
		s := sink.NewJSONL(&buf)
		_, err := exp.Run(e, seed, sc, exp.Options{
			Sink:    s,
			Capture: func(exp.Cell) exp.Capture { return trace.NewCellCapture() },
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	})
	return buf.Bytes()
}

// stripTrace drops the "trace"-series lines from a JSONL stream.
func stripTrace(b []byte) []byte {
	var out []byte
	for _, line := range bytes.SplitAfter(b, []byte("\n")) {
		if bytes.Contains(line, []byte(`"series":"trace"`)) {
			continue
		}
		out = append(out, line...)
	}
	return out
}

// decodeTrace rebuilds the Trace carried by a recorded JSONL stream.
func decodeTrace(t *testing.T, b []byte) trace.Trace {
	t.Helper()
	recs, err := sink.DecodeJSONLStream(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Decode(recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) == 0 {
		t.Fatal("stream carries no trace records")
	}
	return tr
}

// assertCaptureTransparent checks the capture hook's core contract on
// one experiment: turning capture on must not change a single byte of
// the non-trace records, at any worker count, and the captured stream
// itself must be byte-identical across worker counts.
func assertCaptureTransparent(t *testing.T, e exp.Experiment, seed int64, sc Scale) {
	t.Helper()
	plain, _ := renderJSONL(t, e, seed, sc, 1)
	counts := []int{1, 2, max(2, runtime.GOMAXPROCS(0))}
	var first []byte
	for _, w := range counts {
		captured := captureJSONL(t, e, seed, sc, w)
		if !bytes.Contains(captured, []byte(`"series":"trace"`)) {
			t.Fatalf("workers=%d: capture-on stream carries no trace records", w)
		}
		if got := stripTrace(captured); !bytes.Equal(got, plain) {
			t.Fatalf("workers=%d: capture-on non-trace bytes differ from the plain stream", w)
		}
		if first == nil {
			first = captured
		} else if !bytes.Equal(captured, first) {
			t.Fatalf("workers=%d: captured stream differs from workers=%d", w, counts[0])
		}
	}
}

func TestFig10CaptureLeavesRecordBytesUntouched(t *testing.T) {
	assertCaptureTransparent(t, fig10Exp{}, 4, detScale())
}

func TestBroadcastCaptureLeavesRecordBytesUntouched(t *testing.T) {
	assertCaptureTransparent(t, broadcast.Default(), 4, detScale())
}

// replayAgainst re-runs an experiment with each cell's replay channel
// built from the recording plus a fresh capture, and returns the diff
// of re-captured decisions against the recording.
func replayAgainst(t *testing.T, e exp.Experiment, seed int64, sc Scale, recorded trace.Trace) trace.Report {
	t.Helper()
	set := trace.NewCaptureSet()
	withWorkers(2, func() {
		_, err := exp.Run(e, seed, sc, exp.Options{
			Sink: sink.Discard,
			Capture: func(c exp.Cell) exp.Capture {
				return set.Add(c.Index, trace.NewCellCaptureReplay(trace.NewReplay(recorded[c.Index])))
			},
		})
		if err != nil {
			t.Fatal(err)
		}
	})
	replayed := trace.Trace{}
	for cell, cc := range set.Captures() {
		replayed[cell] = cc.Collector()
		if rerr := cc.Replay().Err(); rerr != nil {
			t.Errorf("cell %d: %v", cell, rerr)
		}
	}
	return trace.Diff(recorded, replayed)
}

// assertRoundTrip records an experiment and replays it against its own
// recording: zero delivery-decision divergence.
func assertRoundTrip(t *testing.T, e exp.Experiment, seed int64, sc Scale) {
	t.Helper()
	recorded := decodeTrace(t, captureJSONL(t, e, seed, sc, 1))
	rep := replayAgainst(t, e, seed, sc, recorded)
	if !rep.Identical() {
		var b bytes.Buffer
		rep.Print(&b)
		t.Fatalf("record -> replay diverged:\n%s", b.String())
	}
	if rep.Events == 0 {
		t.Fatal("round trip compared no events")
	}
}

func TestFig10RecordReplayRoundTrip(t *testing.T) {
	assertRoundTrip(t, fig10Exp{}, 4, detScale())
}

func TestBroadcastRecordReplayRoundTrip(t *testing.T) {
	assertRoundTrip(t, broadcast.Default(), 4, detScale())
}

// TestTraceDiffDetectsSeedPerturbation: the `trace diff` primitive must
// flag two recordings of the same experiment at different seeds — the
// divergence-detection path `meshopt trace diff` exits nonzero on.
func TestTraceDiffDetectsSeedPerturbation(t *testing.T) {
	sc := detScale()
	a := decodeTrace(t, captureJSONL(t, fig10Exp{}, 4, sc, 1))
	b := decodeTrace(t, captureJSONL(t, fig10Exp{}, 5, sc, 1))
	if rep := trace.Diff(a, b); rep.Identical() {
		t.Fatal("seed-perturbed recordings compare identical")
	}
	if rep := trace.Diff(a, a); !rep.Identical() {
		t.Fatal("self-diff diverges")
	}
}
