package experiments

import (
	"bytes"
	"io"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/broadcast"
	"repro/internal/experiments/exp"
)

// TestBroadcastJSONLByteIdenticalAcrossWorkerCounts pins the broadcast
// family to the engine's streaming guarantee: the record stream must
// be byte-identical at 1, 2 and GOMAXPROCS workers.
func TestBroadcastJSONLByteIdenticalAcrossWorkerCounts(t *testing.T) {
	sc := detScale()
	sc.Iterations = 2 // 24 nodes, 2 reps: 24 cells
	e := broadcast.Default()
	ref, refRes := renderJSONL(t, e, 4, sc, 1)
	if len(ref) == 0 {
		t.Fatal("broadcast streamed no records")
	}
	for _, workers := range []int{2, max(2, runtime.GOMAXPROCS(0))} {
		got, res := renderJSONL(t, e, 4, sc, workers)
		if !bytes.Equal(got, ref) {
			t.Fatalf("broadcast stream differs at %d workers:\ngot:\n%s\nref:\n%s", workers, got, ref)
		}
		if !reflect.DeepEqual(res, refRes) {
			t.Fatalf("broadcast reduction differs at %d workers:\ngot: %+v\nref: %+v", workers, res, refRes)
		}
	}
}

// TestBroadcastShardMergeByteIdentical mirrors the fig10 shard
// contract for the dissemination family: 2-way and 3-way shards —
// each shard run with a different worker count — must merge back to
// the byte-identical unsharded stream and reduction.
func TestBroadcastShardMergeByteIdentical(t *testing.T) {
	sc := detScale()
	sc.Iterations = 2
	e := broadcast.Default()
	full, fullRes := renderJSONL(t, e, 4, sc, max(2, runtime.GOMAXPROCS(0)))
	if len(full) == 0 {
		t.Fatal("broadcast streamed no records")
	}
	for _, k := range []int{2, 3} {
		var ins []io.Reader
		for i := 0; i < k; i++ {
			workers := 1 + (i % runtime.GOMAXPROCS(0))
			ins = append(ins, bytes.NewReader(renderShard(t, e, 4, sc, exp.Shard{Index: i, Count: k}, workers)))
		}
		var merged bytes.Buffer
		res, err := exp.Merge(ins, &merged)
		if err != nil {
			t.Fatalf("k=%d: merge: %v", k, err)
		}
		if !bytes.Equal(merged.Bytes(), full) {
			t.Fatalf("k=%d: merged shards differ from the unsharded stream:\nmerged:\n%s\nfull:\n%s",
				k, merged.Bytes(), full)
		}
		if !reflect.DeepEqual(res, fullRes) {
			t.Fatalf("k=%d: merged reduction differs:\nmerged: %+v\nfull:   %+v", k, res, fullRes)
		}
	}
}
