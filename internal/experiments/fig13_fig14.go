package experiments

import (
	"fmt"
	"io"
	"math"

	"repro/internal/core/controller"
	"repro/internal/core/optimize"
	"repro/internal/experiments/exp"
	"repro/internal/phy"
	"repro/internal/scenario/sink"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/transport"
)

// Regime names the three Fig. 13/14 operating modes.
type Regime int

// Operating modes.
const (
	NoRC Regime = iota // plain TCP, no rate control
	RCMax
	RCProp
)

func (r Regime) String() string {
	switch r {
	case NoRC:
		return "TCP-noRC"
	case RCMax:
		return "TCP-Max"
	case RCProp:
		return "TCP-Prop"
	}
	return fmt.Sprintf("Regime(%d)", int(r))
}

func (r Regime) objective() optimize.Objective {
	if r == RCMax {
		return optimize.MaxThroughput
	}
	return optimize.ProportionalFair
}

// tcpRun executes one regime on a prepared network and returns per-flow
// goodputs plus the plan (nil for NoRC routing-only runs it still
// computes the plan to install routes).
func tcpRun(nw *topology.Network, flows []controller.Flow, rate phy.Rate, regime Regime, sc Scale) ([]float64, *controller.Plan, error) {
	cfg := controller.DefaultConfig(rate)
	cfg.ProbePeriod = probePeriodFor(rate, sc)
	cfg.ProbeWindow = sc.ProbeWindow
	cfg.Objective = regime.objective()
	c := controller.New(nw, flows, cfg)
	c.ProbeFullWindow()
	plan, err := c.Compute()
	if err != nil {
		return nil, nil, err
	}
	var tcp []*transport.Flow
	if regime == NoRC {
		for s, f := range flows {
			fl := transport.NewFlow(nw.Sim, nw.Nodes[f.Src], nw.Nodes[f.Dst], s)
			fl.Start()
			tcp = append(tcp, fl)
		}
	} else {
		tcp, _ = c.ApplyTCP(plan)
	}
	nw.Sim.Run(nw.Sim.Now() + sc.TrafficDur)
	out := make([]float64, len(tcp))
	for i, f := range tcp {
		f.Stop()
		out[i] = f.GoodputBps()
	}
	return out, plan, nil
}

// Fig13Result is the two-flow upstream starvation experiment: per-regime
// throughput summaries for the 1-hop and 2-hop flows.
type Fig13Result struct {
	// PerRegime[regime] = [2]Summary{1-hop flow, 2-hop flow}.
	PerRegime map[Regime][2]stats.Summary
	Totals    map[Regime]float64
}

// fig13Cell is one (regime, iteration) run.
type fig13Cell struct {
	seed   int64
	sc     Scale
	regime Regime
	it     int
}

// fig13Exp runs the gateway starvation scenario at 1 Mb/s under the
// three regimes, repeated per iteration with fresh MAC randomness. Each
// (regime, iteration) run is an independent cell.
type fig13Exp struct{}

func (fig13Exp) Name() string { return "fig13" }
func (fig13Exp) Describe() string {
	return "two-flow upstream TCP starvation and rate-control regimes"
}

func (fig13Exp) Cells(seed int64, sc Scale) []exp.Cell {
	var cells []exp.Cell
	for _, regime := range []Regime{NoRC, RCMax, RCProp} {
		for it := 0; it < sc.Iterations; it++ {
			cells = append(cells, exp.Cell{Seed: seed + int64(it)*17, Data: fig13Cell{
				seed: seed, sc: sc, regime: regime, it: it,
			}})
		}
	}
	return cells
}

func (fig13Exp) RunCell(c exp.Cell) sink.Record {
	d := c.Data.(fig13Cell)
	flows := []controller.Flow{{Src: 1, Dst: 0}, {Src: 2, Dst: 0}}
	nw := topology.GatewayScenario(d.seed+int64(d.it)*17, phy.Rate1)
	out, _, err := tcpRun(nw, flows, phy.Rate1, d.regime, d.sc)
	fields := []sink.Field{
		sink.F("regime", int(d.regime)),
		sink.F("iteration", d.it),
		sink.F("failed", err != nil),
	}
	if err == nil {
		fields = append(fields, sink.F("goodput_bps", out))
	}
	return sink.Record{Fields: fields}
}

func (fig13Exp) Reduce(recs <-chan sink.Record) exp.Result {
	res := Fig13Result{
		PerRegime: map[Regime][2]stats.Summary{},
		Totals:    map[Regime]float64{},
	}
	perRegime := map[Regime][2][]float64{}
	for rec := range recs {
		if rec.Bool("failed") {
			continue
		}
		got := rec.Floats("goodput_bps")
		regime := Regime(rec.Int("regime"))
		e := perRegime[regime]
		e[0] = append(e[0], got[0])
		e[1] = append(e[1], got[1])
		perRegime[regime] = e
	}
	for _, regime := range []Regime{NoRC, RCMax, RCProp} {
		e := perRegime[regime]
		res.PerRegime[regime] = [2]stats.Summary{stats.Summarize(e[0]), stats.Summarize(e[1])}
		res.Totals[regime] = stats.Mean(e[0]) + stats.Mean(e[1])
	}
	return res
}

// RunFig13 runs the starvation suite through the experiment engine.
func RunFig13(seed int64, sc Scale) Fig13Result {
	res, _ := exp.Run(fig13Exp{}, seed, sc, exp.Options{})
	return res.(Fig13Result)
}

// Print emits the Fig. 13 bars.
func (r Fig13Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Figure 13: two-flow upstream TCP starvation at 1 Mb/s")
	fmt.Fprintln(w, "regime     1-hop kbps (mean/min/max)   2-hop kbps (mean/min/max)   total")
	for _, regime := range []Regime{NoRC, RCMax, RCProp} {
		s := r.PerRegime[regime]
		fmt.Fprintf(w, "%-9s  %7.0f/%7.0f/%7.0f     %7.0f/%7.0f/%7.0f   %7.0f\n",
			regime,
			s[0].Mean/1e3, s[0].Min/1e3, s[0].Max/1e3,
			s[1].Mean/1e3, s[1].Min/1e3, s[1].Max/1e3,
			r.Totals[regime]/1e3)
	}
}

// Fig14Result is the multi-config TCP suite: aggregate-throughput ratios,
// fairness, feasibility, and stability.
type Fig14Result struct {
	// RatioMax and RatioProp are per-config aggregate TCP-RC/TCP-noRC.
	RatioMax, RatioProp []float64
	// JFInoRC and JFIProp are per-config Jain indices.
	JFInoRC, JFIProp []float64
	// Feasibility is achieved/limit per RC flow.
	Feasibility []float64
	// StabilityNoRC and StabilityRC are |x-mean|/mean deviations across
	// iterations per flow.
	StabilityNoRC, StabilityRC []float64
	Skipped                    int
}

// fig14Run is the outcome of one (config, regime, iteration) cell, as
// rebuilt from its record.
type fig14Run struct {
	regime Regime
	got    []float64
	limits []float64 // RCProp it==0 only: per-flow TCP feasibility limits
	failed bool
}

// fig14Cell is one (config, regime, iteration) unit of work.
type fig14Cell struct {
	sc     Scale
	cfg    FlowConfig
	config int
	regime Regime
	it     int
}

// fig14Exp evaluates the three regimes over generated multi-hop
// configurations. Every (config, regime, iteration) run builds its own
// mesh and is an independent cell; the reduction folds each
// configuration as its last cell streams, so only one configuration's
// runs are ever held. A config whose cells all ran still counts as
// skipped if any of its runs failed, matching the sequential early-exit
// semantics.
type fig14Exp struct{}

func (fig14Exp) Name() string { return "fig14" }
func (fig14Exp) Describe() string {
	return "multi-config TCP suite: throughput ratio, fairness, feasibility, stability"
}

func (fig14Exp) Cells(seed int64, sc Scale) []exp.Cell {
	var cells []exp.Cell
	for ci, cfg := range GenerateConfigs(seed, sc.Configs) {
		for _, regime := range []Regime{NoRC, RCMax, RCProp} {
			for it := 0; it < sc.Iterations; it++ {
				cells = append(cells, exp.Cell{Seed: cfg.Seed, Data: fig14Cell{
					sc: sc, cfg: cfg, config: ci, regime: regime, it: it,
				}})
			}
		}
	}
	return cells
}

func (fig14Exp) RunCell(c exp.Cell) sink.Record {
	d := c.Data.(fig14Cell)
	flows := make([]controller.Flow, len(d.cfg.Flows))
	for i, f := range d.cfg.Flows {
		flows[i] = controller.Flow{Src: f.Src, Dst: f.Dst}
	}
	nw := topology.Mesh18Seeded(d.cfg.Seed, d.cfg.Seed+int64(d.it)*29+int64(d.regime)*113)
	for _, n := range nw.Nodes {
		n.SetDefaultRate(d.cfg.Rate)
	}
	got, plan, err := tcpRun(nw, flows, d.cfg.Rate, d.regime, d.sc)
	fields := []sink.Field{
		sink.F("config", d.config),
		sink.F("regime", int(d.regime)),
		sink.F("iteration", d.it),
		sink.F("flows", len(d.cfg.Flows)),
		sink.F("failed", err != nil),
	}
	if err != nil {
		return sink.Record{Fields: fields}
	}
	var agg float64
	for _, v := range got {
		agg += v
	}
	fields = append(fields, sink.F("agg_bps", agg), sink.F("goodput_bps", got))
	if d.regime == RCProp && d.it == 0 {
		scale := optimize.TCPAckScale(transport.HeaderBytes, transport.ACKBytes, transport.MSS)
		limits := make([]float64, len(flows))
		for s := range flows {
			limits[s] = plan.OutputRates[s] * scale
		}
		fields = append(fields, sink.F("limits_bps", limits))
	}
	return sink.Record{Fields: fields}
}

func (fig14Exp) Reduce(recs <-chan sink.Record) exp.Result {
	var res Fig14Result
	config := -1
	var window []fig14Run // the in-flight config's runs, in cell order
	flush := func() {
		if config >= 0 {
			reduceFig14Config(&res, window)
		}
		window = window[:0]
	}
	for rec := range recs {
		if ci := rec.Int("config"); ci != config {
			flush()
			config = ci
		}
		window = append(window, fig14Run{
			regime: Regime(rec.Int("regime")),
			got:    rec.Floats("goodput_bps"),
			limits: rec.Floats("limits_bps"),
			failed: rec.Bool("failed"),
		})
	}
	flush()
	return res
}

// RunFig14 runs the multi-config TCP suite through the experiment
// engine.
func RunFig14(seed int64, sc Scale) Fig14Result {
	res, _ := exp.Run(fig14Exp{}, seed, sc, exp.Options{})
	return res.(Fig14Result)
}

// reduceFig14Config folds one configuration's runs into the result. The
// fold order matches the original gather-then-reduce exactly, so the
// reduced floats are bit-identical to it.
func reduceFig14Config(res *Fig14Result, runs []fig14Run) {
	perRegime := map[Regime][][]float64{} // regime -> iterations -> per-flow goodput
	var limits []float64
	for i := range runs {
		if runs[i].failed {
			res.Skipped++
			return
		}
		perRegime[runs[i].regime] = append(perRegime[runs[i].regime], runs[i].got)
		if runs[i].limits != nil {
			limits = runs[i].limits
		}
	}

	agg := func(rs [][]float64) float64 {
		var t float64
		for _, run := range rs {
			for _, v := range run {
				t += v
			}
		}
		return t / float64(len(rs))
	}
	base := agg(perRegime[NoRC])
	if base > 0 {
		res.RatioMax = append(res.RatioMax, agg(perRegime[RCMax])/base)
		res.RatioProp = append(res.RatioProp, agg(perRegime[RCProp])/base)
	}
	res.JFInoRC = append(res.JFInoRC, stats.JainIndex(meanPerFlow(perRegime[NoRC])))
	res.JFIProp = append(res.JFIProp, stats.JainIndex(meanPerFlow(perRegime[RCProp])))

	propMeans := meanPerFlow(perRegime[RCProp])
	feasible := make([]bool, len(propMeans))
	for s, lim := range limits {
		if lim > 0 && s < len(propMeans) {
			f := propMeans[s] / lim
			res.Feasibility = append(res.Feasibility, f)
			feasible[s] = f >= 0.9
		}
	}
	res.StabilityNoRC = append(res.StabilityNoRC, deviations(perRegime[NoRC], nil)...)
	// The paper's Fig. 14(d) reports stability over the feasible flows of
	// Fig. 14(c).
	res.StabilityRC = append(res.StabilityRC, deviations(perRegime[RCProp], feasible)...)
}

// meanPerFlow averages per-flow goodputs across iterations.
func meanPerFlow(runs [][]float64) []float64 {
	if len(runs) == 0 {
		return nil
	}
	out := make([]float64, len(runs[0]))
	for _, run := range runs {
		for i, v := range run {
			out[i] += v
		}
	}
	for i := range out {
		out[i] /= float64(len(runs))
	}
	return out
}

// deviations returns |x - mean|/mean per flow per iteration. A non-nil
// include mask restricts which flows contribute.
func deviations(runs [][]float64, include []bool) []float64 {
	means := meanPerFlow(runs)
	var out []float64
	for _, run := range runs {
		for i, v := range run {
			if include != nil && (i >= len(include) || !include[i]) {
				continue
			}
			if means[i] > 0 {
				out = append(out, math.Abs(v-means[i])/means[i])
			}
		}
	}
	return out
}

// Print emits the four Fig. 14 panels.
func (r Fig14Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Figure 14: TCP suite over %d configs (%d skipped)\n",
		len(r.RatioMax)+r.Skipped, r.Skipped)
	rm, rp := stats.NewCDF(r.RatioMax), stats.NewCDF(r.RatioProp)
	fmt.Fprintf(w, "(a) aggregate TCP-RC/TCP-noRC: Max median=%.2f max=%.2f | Prop median=%.2f p20=%.2f\n",
		rm.Quantile(0.5), rm.Quantile(1), rp.Quantile(0.5), rp.Quantile(0.2))
	fmt.Fprintf(w, "(b) Jain index: noRC median=%.2f | Prop median=%.2f\n",
		stats.NewCDF(r.JFInoRC).Quantile(0.5), stats.NewCDF(r.JFIProp).Quantile(0.5))
	f := stats.NewCDF(r.Feasibility)
	fmt.Fprintf(w, "(c) feasibility achieved/limit: median=%.2f p30=%.2f (n=%d)\n",
		f.Quantile(0.5), f.Quantile(0.3), f.N())
	sn, sr := stats.NewCDF(r.StabilityNoRC), stats.NewCDF(r.StabilityRC)
	fmt.Fprintf(w, "(d) stability |x-mean|/mean: noRC p70=%.2f | RC p70=%.2f\n",
		sn.Quantile(0.7), sr.Quantile(0.7))
}
