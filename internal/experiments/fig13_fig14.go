package experiments

import (
	"fmt"
	"io"
	"math"

	"repro/internal/core/controller"
	"repro/internal/core/optimize"
	"repro/internal/experiments/runner"
	"repro/internal/phy"
	"repro/internal/scenario/sink"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/transport"
)

// Regime names the three Fig. 13/14 operating modes.
type Regime int

// Operating modes.
const (
	NoRC Regime = iota // plain TCP, no rate control
	RCMax
	RCProp
)

func (r Regime) String() string {
	switch r {
	case NoRC:
		return "TCP-noRC"
	case RCMax:
		return "TCP-Max"
	case RCProp:
		return "TCP-Prop"
	}
	return fmt.Sprintf("Regime(%d)", int(r))
}

func (r Regime) objective() optimize.Objective {
	if r == RCMax {
		return optimize.MaxThroughput
	}
	return optimize.ProportionalFair
}

// tcpRun executes one regime on a prepared network and returns per-flow
// goodputs plus the plan (nil for NoRC routing-only runs it still
// computes the plan to install routes).
func tcpRun(nw *topology.Network, flows []controller.Flow, rate phy.Rate, regime Regime, sc Scale) ([]float64, *controller.Plan, error) {
	cfg := controller.DefaultConfig(rate)
	cfg.ProbePeriod = probePeriodFor(rate, sc)
	cfg.ProbeWindow = sc.ProbeWindow
	cfg.Objective = regime.objective()
	c := controller.New(nw, flows, cfg)
	c.ProbeFullWindow()
	plan, err := c.Compute()
	if err != nil {
		return nil, nil, err
	}
	var tcp []*transport.Flow
	if regime == NoRC {
		for s, f := range flows {
			fl := transport.NewFlow(nw.Sim, nw.Nodes[f.Src], nw.Nodes[f.Dst], s)
			fl.Start()
			tcp = append(tcp, fl)
		}
	} else {
		tcp, _ = c.ApplyTCP(plan)
	}
	nw.Sim.Run(nw.Sim.Now() + sc.TrafficDur)
	out := make([]float64, len(tcp))
	for i, f := range tcp {
		f.Stop()
		out[i] = f.GoodputBps()
	}
	return out, plan, nil
}

// Fig13Result is the two-flow upstream starvation experiment: per-regime
// throughput summaries for the 1-hop and 2-hop flows.
type Fig13Result struct {
	// PerRegime[regime] = [2]Summary{1-hop flow, 2-hop flow}.
	PerRegime map[Regime][2]stats.Summary
	Totals    map[Regime]float64
}

// RunFig13 runs the gateway starvation scenario at 1 Mb/s under the three
// regimes, repeated per iteration with fresh MAC randomness. Each
// (regime, iteration) run is an independent cell.
func RunFig13(seed int64, sc Scale) Fig13Result {
	res := Fig13Result{
		PerRegime: map[Regime][2]stats.Summary{},
		Totals:    map[Regime]float64{},
	}
	flows := []controller.Flow{{Src: 1, Dst: 0}, {Src: 2, Dst: 0}}
	type fig13Cell struct {
		regime Regime
		it     int
	}
	var cells []fig13Cell
	for _, regime := range []Regime{NoRC, RCMax, RCProp} {
		for it := 0; it < sc.Iterations; it++ {
			cells = append(cells, fig13Cell{regime: regime, it: it})
		}
	}
	got := runner.Map(cells, func(_ int, c fig13Cell) []float64 {
		nw := topology.GatewayScenario(seed+int64(c.it)*17, phy.Rate1)
		out, _, err := tcpRun(nw, flows, phy.Rate1, c.regime, sc)
		if err != nil {
			return nil
		}
		return out
	})
	for _, regime := range []Regime{NoRC, RCMax, RCProp} {
		var oneHop, twoHop []float64
		for i, c := range cells {
			if c.regime != regime || got[i] == nil {
				continue
			}
			oneHop = append(oneHop, got[i][0])
			twoHop = append(twoHop, got[i][1])
		}
		res.PerRegime[regime] = [2]stats.Summary{stats.Summarize(oneHop), stats.Summarize(twoHop)}
		res.Totals[regime] = stats.Mean(oneHop) + stats.Mean(twoHop)
	}
	return res
}

// Print emits the Fig. 13 bars.
func (r Fig13Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Figure 13: two-flow upstream TCP starvation at 1 Mb/s")
	fmt.Fprintln(w, "regime     1-hop kbps (mean/min/max)   2-hop kbps (mean/min/max)   total")
	for _, regime := range []Regime{NoRC, RCMax, RCProp} {
		s := r.PerRegime[regime]
		fmt.Fprintf(w, "%-9s  %7.0f/%7.0f/%7.0f     %7.0f/%7.0f/%7.0f   %7.0f\n",
			regime,
			s[0].Mean/1e3, s[0].Min/1e3, s[0].Max/1e3,
			s[1].Mean/1e3, s[1].Min/1e3, s[1].Max/1e3,
			r.Totals[regime]/1e3)
	}
}

// Fig14Result is the multi-config TCP suite: aggregate-throughput ratios,
// fairness, feasibility, and stability.
type Fig14Result struct {
	// RatioMax and RatioProp are per-config aggregate TCP-RC/TCP-noRC.
	RatioMax, RatioProp []float64
	// JFInoRC and JFIProp are per-config Jain indices.
	JFInoRC, JFIProp []float64
	// Feasibility is achieved/limit per RC flow.
	Feasibility []float64
	// StabilityNoRC and StabilityRC are |x-mean|/mean deviations across
	// iterations per flow.
	StabilityNoRC, StabilityRC []float64
	Skipped                    int
}

// fig14Run is the outcome of one (config, regime, iteration) cell.
type fig14Run struct {
	got    []float64
	limits []float64 // RCProp it==0 only: per-flow TCP feasibility limits
	err    error
}

// RunFig14 evaluates the three regimes over generated multi-hop
// configurations. Every (config, regime, iteration) run builds its own
// mesh and is an independent cell. A config whose cells all ran still
// counts as skipped if any of its runs failed, matching the sequential
// early-exit semantics.
func RunFig14(seed int64, sc Scale) Fig14Result {
	res, _ := RunFig14Sink(seed, sc, nil)
	return res
}

// fig14Cell is one (config, regime, iteration) unit of work.
type fig14Cell struct {
	cfg    FlowConfig
	regime Regime
	it     int
}

// RunFig14Sink is RunFig14 with per-cell streaming: every completed
// (config, regime, iteration) run writes a record to snk (series "cell")
// in deterministic cell order, and each configuration's aggregation
// (series "config") folds and streams as soon as its last cell emits —
// only one configuration's runs are ever held, instead of the whole
// grid. A nil snk skips the records; the returned result is identical
// either way, for any worker-pool size.
func RunFig14Sink(seed int64, sc Scale, snk sink.Sink) (Fig14Result, error) {
	var res Fig14Result
	configs := GenerateConfigs(seed, sc.Configs)
	regimes := []Regime{NoRC, RCMax, RCProp}
	var cells []fig14Cell
	for _, cfg := range configs {
		for _, regime := range regimes {
			for it := 0; it < sc.Iterations; it++ {
				cells = append(cells, fig14Cell{cfg: cfg, regime: regime, it: it})
			}
		}
	}

	var sinkErr error
	emit := func(rec sink.Record) {
		if snk != nil && sinkErr == nil {
			sinkErr = snk.Write(rec)
		}
	}
	perConfig := len(regimes) * sc.Iterations
	window := make([]fig14Run, 0, perConfig) // the in-flight config's runs
	runner.Stream(cells, func(_ int, c fig14Cell) fig14Run {
		flows := make([]controller.Flow, len(c.cfg.Flows))
		for i, f := range c.cfg.Flows {
			flows[i] = controller.Flow{Src: f.Src, Dst: f.Dst}
		}
		nw := topology.Mesh18Seeded(c.cfg.Seed, c.cfg.Seed+int64(c.it)*29+int64(c.regime)*113)
		for _, n := range nw.Nodes {
			n.SetDefaultRate(c.cfg.Rate)
		}
		got, plan, err := tcpRun(nw, flows, c.cfg.Rate, c.regime, sc)
		if err != nil {
			return fig14Run{err: err}
		}
		run := fig14Run{got: got}
		if c.regime == RCProp && c.it == 0 {
			scale := optimize.TCPAckScale(transport.HeaderBytes, transport.ACKBytes, transport.MSS)
			for s := range flows {
				run.limits = append(run.limits, plan.OutputRates[s]*scale)
			}
		}
		return run
	}, func(i int, run fig14Run) {
		if snk != nil {
			c := cells[i]
			var agg float64
			for _, v := range run.got {
				agg += v
			}
			emit(sink.Record{Scenario: "fig14", Series: "cell", Cell: i, Fields: []sink.Field{
				sink.F("config", i/perConfig),
				sink.F("regime", c.regime.String()),
				sink.F("iteration", c.it),
				sink.F("flows", len(c.cfg.Flows)),
				sink.F("agg_bps", agg),
				sink.F("failed", run.err != nil),
			}})
		}
		window = append(window, run)
		if len(window) == perConfig {
			ci := i / perConfig
			reduceFig14Config(&res, configs[ci], cells[ci*perConfig:(ci+1)*perConfig], window, emit, ci)
			window = window[:0]
		}
	})
	return res, sinkErr
}

// reduceFig14Config folds one configuration's runs into the result and
// streams the per-config aggregates. The fold order matches the
// pre-streaming gather-then-reduce exactly, so the reduced floats are
// bit-identical to it.
func reduceFig14Config(res *Fig14Result, cfg FlowConfig, cells []fig14Cell, runs []fig14Run, emit func(sink.Record), ci int) {
	flows := cfg.Flows
	perRegime := map[Regime][][]float64{} // regime -> iterations -> per-flow goodput
	var limits []float64
	for i := range runs {
		if runs[i].err != nil {
			res.Skipped++
			emit(sink.Record{Scenario: "fig14", Series: "config", Cell: ci, Fields: []sink.Field{
				sink.F("skipped", true),
			}})
			return
		}
		perRegime[cells[i].regime] = append(perRegime[cells[i].regime], runs[i].got)
		if runs[i].limits != nil {
			limits = runs[i].limits
		}
	}

	agg := func(rs [][]float64) float64 {
		var t float64
		for _, run := range rs {
			for _, v := range run {
				t += v
			}
		}
		return t / float64(len(rs))
	}
	fields := []sink.Field{sink.F("skipped", false)}
	base := agg(perRegime[NoRC])
	if base > 0 {
		res.RatioMax = append(res.RatioMax, agg(perRegime[RCMax])/base)
		res.RatioProp = append(res.RatioProp, agg(perRegime[RCProp])/base)
		fields = append(fields,
			sink.F("ratio_max", res.RatioMax[len(res.RatioMax)-1]),
			sink.F("ratio_prop", res.RatioProp[len(res.RatioProp)-1]))
	}
	res.JFInoRC = append(res.JFInoRC, stats.JainIndex(meanPerFlow(perRegime[NoRC])))
	res.JFIProp = append(res.JFIProp, stats.JainIndex(meanPerFlow(perRegime[RCProp])))
	fields = append(fields,
		sink.F("jfi_norc", res.JFInoRC[len(res.JFInoRC)-1]),
		sink.F("jfi_prop", res.JFIProp[len(res.JFIProp)-1]))

	propMeans := meanPerFlow(perRegime[RCProp])
	feasible := make([]bool, len(flows))
	for s, lim := range limits {
		if lim > 0 && s < len(propMeans) {
			f := propMeans[s] / lim
			res.Feasibility = append(res.Feasibility, f)
			feasible[s] = f >= 0.9
		}
	}
	res.StabilityNoRC = append(res.StabilityNoRC, deviations(perRegime[NoRC], nil)...)
	// The paper's Fig. 14(d) reports stability over the feasible flows of
	// Fig. 14(c).
	res.StabilityRC = append(res.StabilityRC, deviations(perRegime[RCProp], feasible)...)
	emit(sink.Record{Scenario: "fig14", Series: "config", Cell: ci, Fields: fields})
}

// meanPerFlow averages per-flow goodputs across iterations.
func meanPerFlow(runs [][]float64) []float64 {
	if len(runs) == 0 {
		return nil
	}
	out := make([]float64, len(runs[0]))
	for _, run := range runs {
		for i, v := range run {
			out[i] += v
		}
	}
	for i := range out {
		out[i] /= float64(len(runs))
	}
	return out
}

// deviations returns |x - mean|/mean per flow per iteration. A non-nil
// include mask restricts which flows contribute.
func deviations(runs [][]float64, include []bool) []float64 {
	means := meanPerFlow(runs)
	var out []float64
	for _, run := range runs {
		for i, v := range run {
			if include != nil && (i >= len(include) || !include[i]) {
				continue
			}
			if means[i] > 0 {
				out = append(out, math.Abs(v-means[i])/means[i])
			}
		}
	}
	return out
}

// Print emits the four Fig. 14 panels.
func (r Fig14Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Figure 14: TCP suite over %d configs (%d skipped)\n",
		len(r.RatioMax)+r.Skipped, r.Skipped)
	rm, rp := stats.NewCDF(r.RatioMax), stats.NewCDF(r.RatioProp)
	fmt.Fprintf(w, "(a) aggregate TCP-RC/TCP-noRC: Max median=%.2f max=%.2f | Prop median=%.2f p20=%.2f\n",
		rm.Quantile(0.5), rm.Quantile(1), rp.Quantile(0.5), rp.Quantile(0.2))
	fmt.Fprintf(w, "(b) Jain index: noRC median=%.2f | Prop median=%.2f\n",
		stats.NewCDF(r.JFInoRC).Quantile(0.5), stats.NewCDF(r.JFIProp).Quantile(0.5))
	f := stats.NewCDF(r.Feasibility)
	fmt.Fprintf(w, "(c) feasibility achieved/limit: median=%.2f p30=%.2f (n=%d)\n",
		f.Quantile(0.5), f.Quantile(0.3), f.N())
	sn, sr := stats.NewCDF(r.StabilityNoRC), stats.NewCDF(r.StabilityRC)
	fmt.Fprintf(w, "(d) stability |x-mean|/mean: noRC p70=%.2f | RC p70=%.2f\n",
		sn.Quantile(0.7), sr.Quantile(0.7))
}
