package experiments

import (
	"repro/internal/broadcast"
	"repro/internal/experiments/exp"
)

// Every figure suite registers here, in figure order; cmd/meshopt, the
// scenario engine and exp.Merge resolve them by name. Figures 7, 8 and
// 12 share one network-validation run, so they alias the netvalid
// experiment.
func init() {
	exp.Register(fig3Exp{})
	exp.Register(fig4Exp{})
	exp.Register(fig5Exp{})
	exp.Register(fig6Exp{})
	exp.Register(netvalidExp{})
	exp.Register(fig9Exp{})
	exp.Register(fig10Exp{})
	exp.Register(fig11Exp{})
	exp.Register(fig13Exp{})
	exp.Register(fig14Exp{})
	exp.Register(exhaustiveExp{})
	exp.Register(broadcast.Default())
	exp.RegisterAlias("fig7", "netvalid")
	exp.RegisterAlias("fig8", "netvalid")
	exp.RegisterAlias("fig12", "netvalid")
}
