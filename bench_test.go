// Package repro's root benchmarks regenerate every evaluation figure of
// the paper at Quick scale, one bench per figure (Figs. 7/8/12 share the
// network-validation run but are benched separately over its analyses),
// plus ablation benches for the design choices called out in DESIGN.md.
//
// Run: go test -bench=. -benchmem
package repro

import (
	"fmt"
	"io"
	"testing"

	"repro/internal/broadcast"
	"repro/internal/core/capacity"
	"repro/internal/core/conflict"
	"repro/internal/core/feasibility"
	"repro/internal/core/optimize"
	"repro/internal/experiments"
	"repro/internal/experiments/exp"
	"repro/internal/mac"
	"repro/internal/measure"
	"repro/internal/node"
	"repro/internal/phy"
	"repro/internal/probe"
	"repro/internal/scenario/sink"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/traffic"
)

// benchScale trims Quick so each figure bench iteration stays in the
// hundreds of milliseconds; `meshopt -scale paper` runs the full size.
func benchScale() experiments.Scale {
	sc := experiments.Quick()
	sc.PhaseDur = 1 * sim.Second
	sc.Pairs = 4
	sc.Configs = 1
	sc.Iterations = 1
	sc.GridN = 3
	sc.ProbeWindow = 120
	sc.TrafficDur = 3 * sim.Second
	return sc
}

func BenchmarkFig03LIRCDF(b *testing.B) {
	b.ReportAllocs()
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		res := experiments.RunFig3(int64(i+1), sc)
		res.Print(io.Discard)
	}
}

func BenchmarkFig04FPFN(b *testing.B) {
	b.ReportAllocs()
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		res := experiments.RunFig4(int64(i+1), sc)
		res.Print(io.Discard)
	}
}

func BenchmarkFig05ThreePoint(b *testing.B) {
	b.ReportAllocs()
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		res := experiments.RunFig5(3, sc)
		res.Print(io.Discard)
	}
}

func BenchmarkFig06LIRThreshold(b *testing.B) {
	lirs := []float64{0.2, 0.35, 0.5, 0.55, 0.62, 0.8, 0.9, 0.93, 0.96, 0.975, 0.99, 1.0}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := experiments.RunFig6(lirs)
		res.Print(io.Discard)
	}
}

// netValidation is shared by the Fig. 7/8/12 benches; computed once.
var netValidationCache *experiments.NetValidationResult

func netValidation(b *testing.B) experiments.NetValidationResult {
	b.Helper()
	if netValidationCache == nil {
		res := experiments.RunNetValidation(11, benchScale())
		netValidationCache = &res
	}
	return *netValidationCache
}

func BenchmarkFig07OverEstimation(b *testing.B) {
	b.ReportAllocs()
	res := netValidation(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res.Fig7Stats()
	}
}

func BenchmarkFig08UnderEstimation(b *testing.B) {
	b.ReportAllocs()
	res := netValidation(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res.Fig8UnderEstimation()
		res.Fig8ScaledGain()
	}
}

func BenchmarkFig12TwoHop(b *testing.B) {
	b.ReportAllocs()
	res := netValidation(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res.Fig12Compare()
	}
}

func BenchmarkFig09EstimatorCases(b *testing.B) {
	b.ReportAllocs()
	sc := benchScale()
	sc.ProbeWindow = 300
	for i := 0; i < b.N; i++ {
		res := experiments.RunFig9(2, sc)
		res.Print(io.Discard)
	}
}

func BenchmarkFig10LossRMSE(b *testing.B) {
	b.ReportAllocs()
	sc := benchScale()
	sc.ProbeWindow = 250
	for i := 0; i < b.N; i++ {
		res := experiments.RunFig10(4, sc)
		res.Print(io.Discard)
	}
}

// BenchmarkFig10Trace runs fig 10 through the experiment engine with
// per-link delivery capture off vs on. The off case is the regression
// guard: the Tracer hook must cost nothing when no tracer is installed.
func BenchmarkFig10Trace(b *testing.B) {
	e, ok := exp.Find("fig10")
	if !ok {
		b.Fatal("fig10 not registered")
	}
	sc := benchScale()
	sc.ProbeWindow = 250
	for _, mode := range []string{"capture=off", "capture=on"} {
		mode := mode
		b.Run(mode, func(b *testing.B) {
			b.ReportAllocs()
			opts := exp.Options{}
			if mode == "capture=on" {
				opts.Capture = func(exp.Cell) exp.Capture { return trace.NewCellCapture() }
			}
			for i := 0; i < b.N; i++ {
				opts.Sink = sink.NewJSONL(io.Discard)
				if _, err := exp.Run(e, 4, sc, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig11CapacityVsAdhoc(b *testing.B) {
	b.ReportAllocs()
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		res := experiments.RunFig11(6, sc)
		res.Print(io.Discard)
	}
}

func BenchmarkFig13Starvation(b *testing.B) {
	b.ReportAllocs()
	sc := benchScale()
	sc.TrafficDur = 8 * sim.Second
	for i := 0; i < b.N; i++ {
		res := experiments.RunFig13(3, sc)
		res.Print(io.Discard)
	}
}

func BenchmarkFig14TCPSuite(b *testing.B) {
	b.ReportAllocs()
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		res := experiments.RunFig14(9, sc)
		res.Print(io.Discard)
	}
}

// BenchmarkBroadcast runs the full broadcast dissemination sweep
// (root × policy × rep at quick scale, adversaries and churn on)
// through the experiment engine with a streaming JSONL sink — the same
// path `meshopt fig broadcast` takes.
func BenchmarkBroadcast(b *testing.B) {
	b.ReportAllocs()
	w := broadcast.Default()
	sc := exp.Quick()
	for i := 0; i < b.N; i++ {
		snk := sink.NewJSONL(io.Discard)
		res, err := exp.Run(w, 4, sc, exp.Options{Sink: snk})
		if err != nil {
			b.Fatal(err)
		}
		if err := snk.Close(); err != nil {
			b.Fatal(err)
		}
		res.Print(io.Discard)
	}
}

// --- Ablation benches -------------------------------------------------

// BenchmarkAblationLIRThreshold sweeps the binary classifier threshold
// over a bimodal LIR population, reporting the FN/FP trade-off the §4.4
// analysis predicts.
func BenchmarkAblationLIRThreshold(b *testing.B) {
	var lirs []float64
	for i := 0; i < 60; i++ {
		lirs = append(lirs, 0.35+0.005*float64(i))
	}
	for i := 0; i < 40; i++ {
		lirs = append(lirs, 0.94+0.0015*float64(i))
	}
	thresholds := []float64{0.5, 0.7, 0.8, 0.9, 0.95, 0.99}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, th := range thresholds {
			feasibility.ExpectedLIRErrors(lirs, th)
		}
	}
}

// BenchmarkAblationFrankWolfe measures solver cost and utility gap as the
// iteration budget grows on a 6-link/4-flow polytope.
func BenchmarkAblationFrankWolfe(b *testing.B) {
	g := conflict.NewGraph(6)
	for i := 0; i < 6; i++ {
		g.AddEdge(i, (i+1)%6)
		g.AddEdge(i, (i+2)%6)
	}
	region := feasibility.Build([]float64{1, 2, 1.5, 1, 2.5, 1.2}, g)
	prob := &optimize.Problem{
		Region: region,
		Routes: [][]int{{0, 1}, {2}, {3, 4}, {5}},
	}
	for _, iters := range []int{50, 200, 800} {
		b.Run(benchName("iters", iters), func(b *testing.B) {
			var gap float64
			ref, err := optimize.Solve(prob, optimize.ProportionalFair, optimize.Options{Iterations: 3000})
			if err != nil {
				b.Fatal(err)
			}
			refU := optimize.Utility(ref, optimize.ProportionalFair)
			for i := 0; i < b.N; i++ {
				y, err := optimize.Solve(prob, optimize.ProportionalFair, optimize.Options{Iterations: iters})
				if err != nil {
					b.Fatal(err)
				}
				gap = refU - optimize.Utility(y, optimize.ProportionalFair)
			}
			b.ReportMetric(gap, "utility-gap")
		})
	}
}

// BenchmarkAblationCapture compares IA-pair simultaneous throughput with
// capture enabled vs disabled (the FN source of §4.3.2).
func BenchmarkAblationCapture(b *testing.B) {
	run := func(b *testing.B, captureDB float64) float64 {
		cfg := phy.DefaultConfig()
		cfg.CaptureDB = captureDB
		s := sim.New(5)
		med := phy.NewMedium(s, cfg)
		// IA geometry, as in topology.TwoLink.
		for _, p := range []phy.Position{{X: 0}, {X: 90}, {X: 240}, {X: 320}} {
			med.AddRadio(p)
		}
		nw := &topology.Network{Sim: s, Medium: med}
		for _, r := range med.Radios() {
			nw.Nodes = append(nw.Nodes, node.New(med, r, phy.Rate1))
		}
		l1, l2 := topology.Link{Src: 0, Dst: 1}, topology.Link{Src: 2, Dst: 3}
		nw.InstallDirectRoute(l1)
		nw.InstallDirectRoute(l2)
		res := measure.Simultaneous(nw, []topology.Link{l1, l2}, traffic.DefaultPayload, 2*sim.Second)
		return res[0].ThroughputBps
	}
	for _, captureDB := range []float64{5, 1000} { // 1000 dB = capture off
		captureDB := captureDB
		b.Run(benchName("captureDB", int(captureDB)), func(b *testing.B) {
			var exposed float64
			for i := 0; i < b.N; i++ {
				exposed = run(b, captureDB)
			}
			b.ReportMetric(exposed/1e3, "exposed-kbps")
		})
	}
}

// BenchmarkAblationProbeWindow reports estimator RMSE for different
// probing windows (the Fig. 10b sensitivity).
func BenchmarkAblationProbeWindow(b *testing.B) {
	for _, window := range []int{100, 200, 400} {
		window := window
		b.Run(benchName("S", window), func(b *testing.B) {
			sc := benchScale()
			sc.ProbeWindow = window
			var rmse float64
			for i := 0; i < b.N; i++ {
				res := experiments.RunFig10(4, sc)
				rmse = res.RMSEByS[window]
			}
			b.ReportMetric(rmse, "rmse")
		})
	}
}

// BenchmarkAblationRateAdaptation quantifies the paper's §7 caveat: with
// 802.11 rate adaptation enabled, fixed-rate probing no longer matches the
// data plane, and the Eq. 6 capacity estimate degrades. Reported metric:
// relative error of the Eq. 6 estimate vs the measured ARF throughput on a
// marginal link.
func BenchmarkAblationRateAdaptation(b *testing.B) {
	var relErr float64
	for i := 0; i < b.N; i++ {
		s := sim.New(31)
		med := phy.NewMedium(s, phy.DefaultConfig())
		ra := med.AddRadio(phy.Position{})
		rb := med.AddRadio(phy.Position{X: 129}) // sustains 5.5, not 11
		na := node.New(med, ra, phy.Rate11)
		nb := node.New(med, rb, phy.Rate11)
		_ = nb
		na.SetRoute(1, 1)
		arf := mac.NewARF(phy.Rate11)
		na.MAC().SetRateAdapter(arf)

		nw := &topology.Network{Sim: s, Medium: med, Nodes: []*node.Node{na, nb}}
		got := measure.MaxUDP(nw, topology.Link{Src: 0, Dst: 1}, traffic.DefaultPayload, 3*sim.Second)

		// The estimator probes at the *configured* 11 Mb/s and feeds
		// Eq. 6 with that rate — blind to the adapted data rate.
		rec := probe.NewRecorder(nb)
		pr := probe.NewProber(s, na, phy.Rate11, traffic.DefaultPayload)
		pr.SetPeriod(60 * sim.Millisecond)
		pr.Start()
		s.Run(s.Now() + 10*sim.Second)
		pr.Stop()
		est, ok := rec.Estimate(0, 150)
		if !ok {
			b.Fatal("no probe estimate")
		}
		pred := capacity.MaxUDP(est.Pl, phy.Rate11, traffic.DefaultPayload)
		relErr = (pred - got.ThroughputBps) / got.ThroughputBps
	}
	b.ReportMetric(relErr, "rel-err")
}

// BenchmarkAblationFormulation compares the three solver formulations on
// an odd-cycle conflict structure, where the MIS polytope is exact and
// clique constraints are an optimistic outer bound.
func BenchmarkAblationFormulation(b *testing.B) {
	g := conflict.NewGraph(5)
	for i := 0; i < 5; i++ {
		g.AddEdge(i, (i+1)%5)
	}
	caps := []float64{1e6, 1e6, 1e6, 1e6, 1e6}
	routes := [][]int{{0}, {1}, {2}, {3}, {4}}
	region := feasibility.Build(caps, g)
	cp := optimize.NewCliqueProblem(caps, g, routes)

	sum := func(v []float64) float64 {
		t := 0.0
		for _, x := range v {
			t += x
		}
		return t
	}
	b.Run("polytope", func(b *testing.B) {
		var agg float64
		for i := 0; i < b.N; i++ {
			y, err := optimize.Solve(&optimize.Problem{Region: region, Routes: routes},
				optimize.ProportionalFair, optimize.Options{})
			if err != nil {
				b.Fatal(err)
			}
			agg = sum(y)
		}
		b.ReportMetric(agg/1e6, "agg-Mbps")
	})
	b.Run("clique", func(b *testing.B) {
		var agg float64
		for i := 0; i < b.N; i++ {
			y, err := optimize.SolveClique(cp, optimize.ProportionalFair, optimize.Options{})
			if err != nil {
				b.Fatal(err)
			}
			agg = sum(y)
		}
		b.ReportMetric(agg/1e6, "agg-Mbps")
	})
	b.Run("distributed", func(b *testing.B) {
		var agg float64
		for i := 0; i < b.N; i++ {
			y, err := optimize.SolveDistributed(cp, optimize.ProportionalFair,
				optimize.DistributedOptions{Iterations: 3000})
			if err != nil {
				b.Fatal(err)
			}
			agg = sum(y)
		}
		b.ReportMetric(agg/1e6, "agg-Mbps")
	})
}

// BenchmarkAblationExhaustiveRegion compares the O(2^L) measured-
// combination region (the paper's offline alternative in §3.2) against
// the online MIS construction, reporting their agreement.
func BenchmarkAblationExhaustiveRegion(b *testing.B) {
	sc := benchScale()
	var agree float64
	for i := 0; i < b.N; i++ {
		res := experiments.RunExhaustive(5, sc)
		agree = res.MISAgreement
		res.Print(io.Discard)
	}
	b.ReportMetric(agree, "agreement")
}

// --- Microbenchmarks on the core data structures ----------------------

func BenchmarkMISEnumeration(b *testing.B) {
	g := conflict.NewGraph(24)
	for c := 0; c < 6; c++ {
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				g.AddEdge(4*c+i, 4*c+j)
			}
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if got := len(g.MaximalIndependentSets()); got != 4096 {
			b.Fatalf("MIS count %d", got)
		}
	}
}

func BenchmarkRegionMembership(b *testing.B) {
	g := conflict.NewGraph(10)
	for i := 0; i < 10; i++ {
		g.AddEdge(i, (i+1)%10)
	}
	caps := make([]float64, 10)
	y := make([]float64, 10)
	for i := range caps {
		caps[i] = 1 + float64(i%3)
		y[i] = 0.3
	}
	region := feasibility.Build(caps, g)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		region.Contains(y)
	}
}

func BenchmarkChannelLossEstimator(b *testing.B) {
	trace := make(capacity.LossTrace, 1280)
	for i := range trace {
		trace[i] = i%13 == 0 || (i > 400 && i < 430)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		capacity.EstimateChannelLoss(trace, capacity.DefaultWmin)
	}
}

func BenchmarkEq6Capacity(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		capacity.MaxUDP(float64(i%90)/100, phy.Rate11, 1470)
	}
}

func BenchmarkMACSaturation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		nw := topology.TwoLink(int64(i+1), topology.CS, phy.Rate11, phy.Rate11)
		measure.MaxUDP(nw.Network, nw.Link1, traffic.DefaultPayload, sim.Second)
	}
}

func benchName(k string, v int) string {
	return fmt.Sprintf("%s=%d", k, v)
}
