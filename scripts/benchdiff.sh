#!/usr/bin/env bash
# benchdiff.sh — compare two bench.sh snapshots (BENCH_<n>.json).
#
# Usage: scripts/benchdiff.sh OLD.json NEW.json [threshold_pct]
#
# Prints a per-benchmark table of ns/op, B/op and allocs/op deltas.
# Allocation deltas are the signal: allocs/op is deterministic per
# build, so any change past the threshold (default 2%) is flagged and
# fails the script — a regression gate suited to CI. ns/op deltas are
# reported for context only and never fail the gate: wall-clock numbers
# from shared or throttled machines (see each snapshot's _env block)
# are too noisy to gate on. Benchmarks present in only one snapshot are
# listed as added/removed.
set -euo pipefail

if [ $# -lt 2 ] || [ $# -gt 3 ]; then
    echo "usage: scripts/benchdiff.sh OLD.json NEW.json [threshold_pct]" >&2
    exit 2
fi
OLD="$1"
NEW="$2"
THRESH="${3:-2}"
for f in "$OLD" "$NEW"; do
    if [ ! -r "$f" ]; then
        echo "benchdiff: cannot read $f" >&2
        exit 2
    fi
done

# Each snapshot is one JSON object per line per benchmark (bench.sh
# writes one entry per line), so a line-oriented awk parse is exact for
# the files bench.sh produces.
parse() {
    awk -F'"' '
    /"ns_per_op"/ {
        name = $2
        if (name == "_env") next
        ns = ""; bytes = ""; allocs = ""
        n = split($0, parts, /[,{}]/)
        for (i = 1; i <= n; i++) {
            if (parts[i] ~ /"ns_per_op":/)     { sub(/.*: */, "", parts[i]); ns = parts[i] }
            if (parts[i] ~ /"bytes_per_op":/)  { sub(/.*: */, "", parts[i]); bytes = parts[i] }
            if (parts[i] ~ /"allocs_per_op":/) { sub(/.*: */, "", parts[i]); allocs = parts[i] }
        }
        printf "%s\t%s\t%s\t%s\n", name, ns, bytes, allocs
    }' "$1"
}

OLD_TSV="$(mktemp)"
NEW_TSV="$(mktemp)"
trap 'rm -f "$OLD_TSV" "$NEW_TSV"' EXIT
parse "$OLD" > "$OLD_TSV"
parse "$NEW" > "$NEW_TSV"

awk -F'\t' -v thresh="$THRESH" -v oldfile="$OLD" -v newfile="$NEW" '
function pct(old, new) { return old == 0 ? (new == 0 ? 0 : 999) : (new - old) * 100.0 / old }
FNR == NR { ons[$1] = $2; obytes[$1] = $3; oallocs[$1] = $4; seen[$1] = 1; next }
{
    nns[$1] = $2; nbytes[$1] = $3; nallocs[$1] = $4
    if (!($1 in seen)) added[$1] = 1
    order[++n] = $1
}
END {
    printf "%-55s %12s %12s %12s\n", "benchmark", "ns/op Δ%", "B/op Δ%", "allocs/op Δ%"
    fails = 0
    for (i = 1; i <= n; i++) {
        name = order[i]
        if (name in added) {
            printf "%-55s %38s\n", name, "(added)"
            continue
        }
        dns = pct(ons[name], nns[name])
        db  = pct(obytes[name], nbytes[name])
        da  = pct(oallocs[name], nallocs[name])
        flag = ""
        if (da > thresh || da < -thresh) { flag = "  <-- allocs/op moved"; fails++ }
        printf "%-55s %+11.1f%% %+11.1f%% %+11.1f%%%s\n", name, dns, db, da, flag
    }
    for (name in seen)
        if (!(name in nns)) printf "%-55s %38s\n", name, "(removed)"
    printf "\nns/op deltas are informational only: wall-clock is noisy across machines/throttling\n"
    printf "(compare the _env blocks of %s and %s).\n", oldfile, newfile
    if (fails > 0) {
        printf "FAIL: %d benchmark(s) changed allocs/op by more than %s%%\n", fails, thresh
        exit 1
    }
    printf "OK: no allocs/op change beyond %s%%\n", thresh
}' "$OLD_TSV" "$NEW_TSV"
