#!/usr/bin/env bash
# bench.sh — run the full benchmark suite and record a machine-readable
# snapshot so successive PRs accumulate a performance trajectory.
#
# Usage: scripts/bench.sh [output.json]
#   default output: the next free BENCH_<n>.json in the repo root, so
#   successive PRs never clobber an earlier snapshot. An explicit output
#   path that already exists is refused for the same reason.
#
# The JSON maps benchmark name -> {ns_per_op, bytes_per_op, allocs_per_op},
# taking the fastest of -count=3 runs (the usual noise-robust choice).
# A leading "_env" object records the machine (GOMAXPROCS, CPU model, go
# version) so cross-snapshot noise — e.g. container throttling between
# PRs — is diagnosable from the snapshots alone.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-}"
if [ -z "$OUT" ]; then
    n=1
    while [ -e "BENCH_${n}.json" ]; do n=$((n + 1)); done
    OUT="BENCH_${n}.json"
elif [ -e "$OUT" ]; then
    echo "refusing to overwrite existing $OUT (pass a fresh path or let bench.sh pick the next free index)" >&2
    exit 1
fi
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

GO_VERSION="$(go env GOVERSION)"
GOOS_ARCH="$(go env GOOS)/$(go env GOARCH)"
CPU_MODEL="$(awk -F': *' '/model name/{print $2; exit}' /proc/cpuinfo 2>/dev/null || true)"
if [ -z "$CPU_MODEL" ]; then
    CPU_MODEL="$(sysctl -n machdep.cpu.brand_string 2>/dev/null || echo unknown)"
fi
CPU_MODEL="$(printf '%s' "$CPU_MODEL" | tr -d '"\\')"
MAXPROCS="${GOMAXPROCS:-$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN)}"

go test -run=NONE -bench=. -benchmem -count=3 . | tee "$RAW"

awk '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name) # strip the GOMAXPROCS suffix
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op")     ns = $i
        if ($(i+1) == "B/op")      bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    if (ns == "") next
    if (!(name in best) || ns + 0 < best[name] + 0) {
        best[name] = ns
        bbytes[name] = bytes
        ballocs[name] = allocs
    }
}
END {
    for (name in best)
        printf "%s\t%s\t%s\t%s\n", name, best[name], bbytes[name], ballocs[name]
}' "$RAW" | sort | awk -F'\t' \
    -v go_version="$GO_VERSION" -v goos_arch="$GOOS_ARCH" \
    -v cpu_model="$CPU_MODEL" -v maxprocs="$MAXPROCS" '
BEGIN {
    printf "{\n  \"_env\": {\"go_version\": \"%s\", \"goos_goarch\": \"%s\", \"cpu_model\": \"%s\", \"gomaxprocs\": %s}", \
        go_version, goos_arch, cpu_model, maxprocs
    first = 0
}
{
    if (!first) printf ",\n"
    first = 0
    printf "  \"%s\": {\"ns_per_op\": %s", $1, $2
    if ($3 != "") printf ", \"bytes_per_op\": %s", $3
    if ($4 != "") printf ", \"allocs_per_op\": %s", $4
    printf "}"
}
END { printf "\n}\n" }' > "$OUT"

echo "wrote $OUT"
