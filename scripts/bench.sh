#!/usr/bin/env bash
# bench.sh — run the full benchmark suite and record a machine-readable
# snapshot so successive PRs accumulate a performance trajectory.
#
# Usage: scripts/bench.sh [output.json]
#   default output: BENCH_1.json in the repo root (bump the number per PR)
#
# The JSON maps benchmark name -> {ns_per_op, bytes_per_op, allocs_per_op},
# taking the fastest of -count=3 runs (the usual noise-robust choice).
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_1.json}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -run=NONE -bench=. -benchmem -count=3 . | tee "$RAW"

awk '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name) # strip the GOMAXPROCS suffix
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op")     ns = $i
        if ($(i+1) == "B/op")      bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    if (ns == "") next
    if (!(name in best) || ns + 0 < best[name] + 0) {
        best[name] = ns
        bbytes[name] = bytes
        ballocs[name] = allocs
    }
}
END {
    for (name in best)
        printf "%s\t%s\t%s\t%s\n", name, best[name], bbytes[name], ballocs[name]
}' "$RAW" | sort | awk -F'\t' '
BEGIN { printf "{\n"; first = 1 }
{
    if (!first) printf ",\n"
    first = 0
    printf "  \"%s\": {\"ns_per_op\": %s", $1, $2
    if ($3 != "") printf ", \"bytes_per_op\": %s", $3
    if ($4 != "") printf ", \"allocs_per_op\": %s", $4
    printf "}"
}
END { printf "\n}\n" }' > "$OUT"

echo "wrote $OUT"
