#!/usr/bin/env bash
# bench.sh — run the full benchmark suite and record a machine-readable
# snapshot so successive PRs accumulate a performance trajectory.
#
# Usage: scripts/bench.sh [output.json]
#   default output: the next free BENCH_<n>.json in the repo root, so
#   successive PRs never clobber an earlier snapshot. An explicit output
#   path that already exists is refused for the same reason.
#
# The JSON maps benchmark name -> {ns_per_op, bytes_per_op, allocs_per_op},
# taking the fastest of -count=3 runs (the usual noise-robust choice).
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-}"
if [ -z "$OUT" ]; then
    n=1
    while [ -e "BENCH_${n}.json" ]; do n=$((n + 1)); done
    OUT="BENCH_${n}.json"
elif [ -e "$OUT" ]; then
    echo "refusing to overwrite existing $OUT (pass a fresh path or let bench.sh pick the next free index)" >&2
    exit 1
fi
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -run=NONE -bench=. -benchmem -count=3 . | tee "$RAW"

awk '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name) # strip the GOMAXPROCS suffix
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op")     ns = $i
        if ($(i+1) == "B/op")      bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    if (ns == "") next
    if (!(name in best) || ns + 0 < best[name] + 0) {
        best[name] = ns
        bbytes[name] = bytes
        ballocs[name] = allocs
    }
}
END {
    for (name in best)
        printf "%s\t%s\t%s\t%s\n", name, best[name], bbytes[name], ballocs[name]
}' "$RAW" | sort | awk -F'\t' '
BEGIN { printf "{\n"; first = 1 }
{
    if (!first) printf ",\n"
    first = 0
    printf "  \"%s\": {\"ns_per_op\": %s", $1, $2
    if ($3 != "") printf ", \"bytes_per_op\": %s", $3
    if ($4 != "") printf ", \"allocs_per_op\": %s", $4
    printf "}"
}
END { printf "\n}\n" }' > "$OUT"

echo "wrote $OUT"
