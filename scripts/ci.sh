#!/usr/bin/env bash
# ci.sh — the repo's gate: formatting, vet, build, tests, and a race run
# over the parallel experiment engine.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt"
UNFORMATTED="$(gofmt -l .)"
if [ -n "$UNFORMATTED" ]; then
    echo "gofmt needed on:" >&2
    echo "$UNFORMATTED" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test"
go test ./...

echo "== go test -race (parallel experiment engine)"
go test -race ./internal/experiments/...

echo "== scenario schema gate (round-trip parse/marshal goldens)"
go test ./internal/scenario -run 'TestGolden|TestBuiltinsMarshalParse' -count=1

echo "== scenario smoke (meshopt run quickstart at quick scale)"
go run ./cmd/meshopt run quickstart -scale quick -o /dev/null

echo "== shard smoke (fig10 as 2 shards + merge == unsharded, byte-for-byte)"
SHARD_TMP="$(mktemp -d)"
trap 'rm -rf "$SHARD_TMP"' EXIT
go build -o "$SHARD_TMP/meshopt" ./cmd/meshopt
"$SHARD_TMP/meshopt" fig 10 -scale quick -seed 4 -o "$SHARD_TMP/full.jsonl" >/dev/null
"$SHARD_TMP/meshopt" fig 10 -scale quick -seed 4 -shard 0/2 -workers 1 -o "$SHARD_TMP/s0.jsonl" >/dev/null
"$SHARD_TMP/meshopt" fig 10 -scale quick -seed 4 -shard 1/2 -o "$SHARD_TMP/s1.jsonl" >/dev/null
"$SHARD_TMP/meshopt" merge -o "$SHARD_TMP/merged.jsonl" "$SHARD_TMP/s0.jsonl" "$SHARD_TMP/s1.jsonl" >/dev/null
cmp "$SHARD_TMP/full.jsonl" "$SHARD_TMP/merged.jsonl"

echo "CI OK"
