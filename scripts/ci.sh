#!/usr/bin/env bash
# ci.sh — the repo's gate: formatting, vet, build, tests, and a race run
# over the parallel experiment engine.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt"
UNFORMATTED="$(gofmt -l .)"
if [ -n "$UNFORMATTED" ]; then
    echo "gofmt needed on:" >&2
    echo "$UNFORMATTED" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test"
go test ./...

echo "== go test -race (parallel experiment engine)"
go test -race ./internal/experiments/...

echo "== scenario schema gate (round-trip parse/marshal goldens)"
go test ./internal/scenario -run 'TestGolden|TestBuiltinsMarshalParse' -count=1

echo "== scenario smoke (meshopt run quickstart at quick scale)"
go run ./cmd/meshopt run quickstart -scale quick -o /dev/null

echo "CI OK"
