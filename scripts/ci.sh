#!/usr/bin/env bash
# ci.sh — the repo's gate: formatting, vet, build, tests, and a race run
# over the parallel experiment engine.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt"
UNFORMATTED="$(gofmt -l .)"
if [ -n "$UNFORMATTED" ]; then
    echo "gofmt needed on:" >&2
    echo "$UNFORMATTED" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test"
go test ./...

echo "== go test -race (parallel experiment engine + shard coordinator + serve layer + trace + obs)"
go test -race ./internal/experiments/... ./internal/dist/... ./internal/serve ./internal/trace ./internal/obs/...

echo "== scenario schema gate (round-trip parse/marshal goldens)"
go test ./internal/scenario -run 'TestGolden|TestBuiltinsMarshalParse' -count=1

echo "== scenario smoke (meshopt run quickstart at quick scale)"
go run ./cmd/meshopt run quickstart -scale quick -o /dev/null

echo "== shard smoke (fig10 as 2 shards + merge == unsharded, byte-for-byte)"
SHARD_TMP="$(mktemp -d)"
SERVE_PID=""
trap 'test -n "$SERVE_PID" && kill "$SERVE_PID" 2>/dev/null; rm -rf "$SHARD_TMP"' EXIT
go build -o "$SHARD_TMP/meshopt" ./cmd/meshopt
"$SHARD_TMP/meshopt" fig 10 -scale quick -seed 4 -o "$SHARD_TMP/full.jsonl" >/dev/null
"$SHARD_TMP/meshopt" fig 10 -scale quick -seed 4 -shard 0/2 -workers 1 -o "$SHARD_TMP/s0.jsonl" >/dev/null
"$SHARD_TMP/meshopt" fig 10 -scale quick -seed 4 -shard 1/2 -o "$SHARD_TMP/s1.jsonl" >/dev/null
"$SHARD_TMP/meshopt" merge -o "$SHARD_TMP/merged.jsonl" "$SHARD_TMP/s0.jsonl" "$SHARD_TMP/s1.jsonl" >/dev/null
cmp "$SHARD_TMP/full.jsonl" "$SHARD_TMP/merged.jsonl"

echo "== pprof smoke (fig10 -pprof-cpu/-pprof-mem write profiles without perturbing the stream)"
"$SHARD_TMP/meshopt" fig 10 -scale quick -seed 4 -pprof-cpu "$SHARD_TMP/cpu.pprof" \
    -pprof-mem "$SHARD_TMP/mem.pprof" -o "$SHARD_TMP/prof.jsonl" >/dev/null
test -s "$SHARD_TMP/cpu.pprof"
test -s "$SHARD_TMP/mem.pprof"
cmp "$SHARD_TMP/full.jsonl" "$SHARD_TMP/prof.jsonl"

echo "== coord smoke (fig10, 3 local workers: mid-run worker kill, bounded retries, resume)"
# Phase 1: the MESHOPT_WORK_FAIL hook kills shard 1's worker after 2
# records on every attempt, so the coordinator must exhaust its retries
# and fail — while still checkpointing the healthy shards 0 and 2.
if MESHOPT_WORK_FAIL=1@2 "$SHARD_TMP/meshopt" coord 10 -scale quick -seed 4 -shards 3 -workers 3 \
    -retries 2 -dir "$SHARD_TMP/run" >/dev/null 2>&1; then
    echo "coord should have failed while shard 1's worker was being killed" >&2
    exit 1
fi
test -f "$SHARD_TMP/run/shard_0.jsonl"
test -f "$SHARD_TMP/run/shard_2.jsonl"
test ! -f "$SHARD_TMP/run/shard_1.jsonl"
# Phase 2: resume re-dispatches only shard 1; the merged output must be
# byte-identical to the unsharded run.
"$SHARD_TMP/meshopt" coord 10 -scale quick -seed 4 -shards 3 -workers 3 -dir "$SHARD_TMP/run" \
    -o "$SHARD_TMP/coord.jsonl" >/dev/null 2>"$SHARD_TMP/coord.log"
grep -q 'msg="reusing checkpoint" shard=0 shards=3' "$SHARD_TMP/coord.log"
cmp "$SHARD_TMP/full.jsonl" "$SHARD_TMP/coord.jsonl"
cmp "$SHARD_TMP/full.jsonl" "$SHARD_TMP/run/merged.jsonl"

echo "== chaos smoke (fig10 under a seeded fault schedule: kill + slow worker + stealing, bytes identical)"
# Shard 1's first attempt is killed after 2 records; shard 2's worker is
# slowed per record, which with -steal-after armed exercises the steal
# path (frontier stall -> kill -> re-dispatch, prefix hash-verified).
# Whatever schedule the race picks, the merged bytes must equal the
# unsharded run.
MESHOPT_FAULT='seed=7,1/kill@2x1,2/slow=5ms' "$SHARD_TMP/meshopt" coord 10 -scale quick -seed 4 \
    -shards 3 -workers 3 -retries 3 -steal-after 1s -dir "$SHARD_TMP/chaos" \
    -o "$SHARD_TMP/chaos.jsonl" >/dev/null 2>"$SHARD_TMP/chaos.log"
cmp "$SHARD_TMP/full.jsonl" "$SHARD_TMP/chaos.jsonl"
cmp "$SHARD_TMP/full.jsonl" "$SHARD_TMP/chaos/merged.jsonl"

echo "== tracing smoke (coord -trace: report decomposes the capture, record bytes untouched)"
# A traced 3-worker coord run must leave the merged stream byte-identical
# to the untraced unsharded run (spans are out-of-band), and `meshopt
# report` over the capture must decompose it: a nonempty critical path
# and per-slot accounting.
"$SHARD_TMP/meshopt" coord 10 -scale quick -seed 4 -shards 3 -workers 3 -dir "$SHARD_TMP/trun" \
    -trace "$SHARD_TMP/coord.trace.json" -o "$SHARD_TMP/traced.jsonl" >/dev/null 2>&1
cmp "$SHARD_TMP/full.jsonl" "$SHARD_TMP/traced.jsonl"
cmp "$SHARD_TMP/full.jsonl" "$SHARD_TMP/trun/merged.jsonl"
"$SHARD_TMP/meshopt" report "$SHARD_TMP/coord.trace.json" >"$SHARD_TMP/report.txt"
grep -q 'critical path (' "$SHARD_TMP/report.txt"
grep -q 'dispatch' "$SHARD_TMP/report.txt"
grep -q 'slots: ' "$SHARD_TMP/report.txt"

echo "== broadcast smoke (dissemination family: run + 2-shard merge + chaos-steal coord, bytes identical)"
"$SHARD_TMP/meshopt" fig broadcast -scale quick -seed 4 -o "$SHARD_TMP/bc.jsonl" >/dev/null
"$SHARD_TMP/meshopt" run examples/broadcast.json -scale quick -o /dev/null
"$SHARD_TMP/meshopt" fig broadcast -scale quick -seed 4 -shard 0/2 -o "$SHARD_TMP/bc0.jsonl" >/dev/null
"$SHARD_TMP/meshopt" fig broadcast -scale quick -seed 4 -shard 1/2 -o "$SHARD_TMP/bc1.jsonl" >/dev/null
"$SHARD_TMP/meshopt" merge -o "$SHARD_TMP/bcm.jsonl" "$SHARD_TMP/bc0.jsonl" "$SHARD_TMP/bc1.jsonl" >/dev/null
cmp "$SHARD_TMP/bc.jsonl" "$SHARD_TMP/bcm.jsonl"
# The chaos case drives the steal suffix-dispatch: shard 1 is killed
# once, shard 2 wedges mid-cell until the frontier stall steals it and
# the thief resumes at the stolen shard's merge frontier.
MESHOPT_FAULT='seed=7,1/kill@2x1,2/hang@6x1' "$SHARD_TMP/meshopt" coord broadcast -scale quick -seed 4 \
    -shards 3 -workers 3 -retries 3 -steal-after 1s -dir "$SHARD_TMP/bchaos" \
    -o "$SHARD_TMP/bchaos.jsonl" >/dev/null 2>"$SHARD_TMP/bchaos.log"
cmp "$SHARD_TMP/bc.jsonl" "$SHARD_TMP/bchaos.jsonl"
cmp "$SHARD_TMP/bc.jsonl" "$SHARD_TMP/bchaos/merged.jsonl"

echo "== trace smoke (record fig10 -> replay exits 0; capture leaves non-trace bytes untouched; seed diff exits nonzero)"
"$SHARD_TMP/meshopt" trace record 10 -scale quick -seed 4 -o "$SHARD_TMP/rec4.jsonl" >/dev/null
"$SHARD_TMP/meshopt" trace replay 10 -scale quick -seed 4 -trace "$SHARD_TMP/rec4.jsonl" >/dev/null
grep -v '"series":"trace"' "$SHARD_TMP/rec4.jsonl" | cmp - "$SHARD_TMP/full.jsonl"
"$SHARD_TMP/meshopt" trace diff "$SHARD_TMP/rec4.jsonl" "$SHARD_TMP/rec4.jsonl" >/dev/null
"$SHARD_TMP/meshopt" trace record 10 -scale quick -seed 5 -o "$SHARD_TMP/rec5.jsonl" >/dev/null
if "$SHARD_TMP/meshopt" trace diff "$SHARD_TMP/rec4.jsonl" "$SHARD_TMP/rec5.jsonl" >/dev/null; then
    echo "trace diff should exit nonzero on seed-perturbed recordings" >&2
    exit 1
fi

echo "== serve smoke (submit fig10 twice: cold compute, then cache hit; both byte == meshopt fig)"
"$SHARD_TMP/meshopt" serve -addr 127.0.0.1:0 -cache "$SHARD_TMP/cache" \
    >"$SHARD_TMP/serve.out" 2>"$SHARD_TMP/serve.log" &
SERVE_PID=$!
ADDR=""
for _ in $(seq 100); do
    ADDR="$(sed -n 's/.*listening on \(http:[^ ]*\).*/\1/p' "$SHARD_TMP/serve.out")"
    [ -n "$ADDR" ] && break
    sleep 0.1
done
test -n "$ADDR" || { cat "$SHARD_TMP/serve.log" >&2; exit 1; }
"$SHARD_TMP/meshopt" submit 10 -addr "$ADDR" -scale quick -seed 4 \
    -o "$SHARD_TMP/sub1.jsonl" >/dev/null 2>"$SHARD_TMP/sub1.log"
"$SHARD_TMP/meshopt" submit 10 -addr "$ADDR" -scale quick -seed 4 \
    -o "$SHARD_TMP/sub2.jsonl" >/dev/null 2>"$SHARD_TMP/sub2.log"
grep -q "cache: hit" "$SHARD_TMP/sub2.log"
cmp "$SHARD_TMP/full.jsonl" "$SHARD_TMP/sub1.jsonl"
cmp "$SHARD_TMP/full.jsonl" "$SHARD_TMP/sub2.jsonl"
# Same for a broadcast job: the repeat submission must be a pure cache
# hit served through the index fast path, byte == meshopt fig.
"$SHARD_TMP/meshopt" submit broadcast -addr "$ADDR" -scale quick -seed 4 \
    -o "$SHARD_TMP/bsub1.jsonl" >/dev/null 2>"$SHARD_TMP/bsub1.log"
"$SHARD_TMP/meshopt" submit broadcast -addr "$ADDR" -scale quick -seed 4 \
    -o "$SHARD_TMP/bsub2.jsonl" >/dev/null 2>"$SHARD_TMP/bsub2.log"
grep -q "cache: hit" "$SHARD_TMP/bsub2.log"
cmp "$SHARD_TMP/bc.jsonl" "$SHARD_TMP/bsub1.jsonl"
cmp "$SHARD_TMP/bc.jsonl" "$SHARD_TMP/bsub2.jsonl"

echo "== observability smoke (/metrics counters live, /v1/stats JSON, pprof reachable)"
# After the cache-hit resubmissions above, the Prometheus text must show
# nonzero cache-hit and job counters, the stats snapshot must be valid
# JSON with a job table, and the pprof index must be mounted.
"$SHARD_TMP/meshopt" stats -addr "$ADDR" -metrics >"$SHARD_TMP/metrics.txt"
grep -Eq '^meshopt_cache_hits_total [1-9]' "$SHARD_TMP/metrics.txt"
grep -Eq '^meshopt_serve_jobs_done_total [1-9]' "$SHARD_TMP/metrics.txt"
grep -q '^# TYPE meshopt_runner_cell_seconds histogram' "$SHARD_TMP/metrics.txt"
"$SHARD_TMP/meshopt" stats -addr "$ADDR" | grep -q '"jobs"'
"$SHARD_TMP/meshopt" stats -addr "$ADDR" -watch 100ms -samples 2 >"$SHARD_TMP/watch.txt"
test "$(wc -l <"$SHARD_TMP/watch.txt")" -eq 2
grep -q 'jobs queued=' "$SHARD_TMP/watch.txt"
grep -q 'Δdone' "$SHARD_TMP/watch.txt"
"$SHARD_TMP/meshopt" stats -addr "$ADDR" -path /debug/pprof/ | grep -qi 'pprof'
grep -q '^# TYPE meshopt_build_info gauge' "$SHARD_TMP/metrics.txt"
grep -Eq '^meshopt_queue_wait_seconds_count [1-9]' "$SHARD_TMP/metrics.txt"
kill "$SERVE_PID" && wait "$SERVE_PID" 2>/dev/null
SERVE_PID=""

echo "== benchdiff (advisory: allocs/op drift between the two newest BENCH_<n>.json snapshots)"
mapfile -t BENCHES < <(ls BENCH_*.json 2>/dev/null | sort -V)
if [ "${#BENCHES[@]}" -ge 2 ]; then
    OLD="${BENCHES[-2]}"
    NEW="${BENCHES[-1]}"
    if ! scripts/benchdiff.sh "$OLD" "$NEW"; then
        echo "benchdiff: advisory — $NEW regressed vs $OLD (not failing CI; see above)" >&2
    fi
else
    echo "benchdiff: fewer than two BENCH_<n>.json snapshots, skipping"
fi

echo "CI OK"
