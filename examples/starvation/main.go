// Starvation: the Fig. 13 scenario. A 1-hop and a 2-hop TCP flow send
// upstream to a gateway; without rate control the hidden-terminal ACK/data
// collisions starve the 2-hop flow, and proportional-fair rate control
// revives it.
//
// Run with: go run ./examples/starvation
package main

import (
	"fmt"

	"repro/internal/core/controller"
	"repro/internal/core/optimize"
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/transport"
)

const trafficTime = 30 * sim.Second

func run(label string, useRC bool, obj optimize.Objective) {
	nw := topology.GatewayScenario(7, phy.Rate1)
	flows := []controller.Flow{{Src: 1, Dst: 0}, {Src: 2, Dst: 0}}

	cfg := controller.DefaultConfig(phy.Rate1)
	cfg.Objective = obj
	c := controller.New(nw, flows, cfg)
	c.ProbeFullWindow()
	plan, err := c.Compute()
	if err != nil {
		panic(err)
	}

	var tcp []*transport.Flow
	if useRC {
		tcp, _ = c.ApplyTCP(plan)
	} else {
		for s, f := range flows {
			fl := transport.NewFlow(nw.Sim, nw.Nodes[f.Src], nw.Nodes[f.Dst], s)
			fl.Start()
			tcp = append(tcp, fl)
		}
	}
	nw.Sim.Run(nw.Sim.Now() + trafficTime)
	for _, f := range tcp {
		f.Stop()
	}
	fmt.Printf("%-9s  1-hop %6.0f kb/s   2-hop %6.0f kb/s   total %6.0f kb/s\n",
		label, tcp[0].GoodputBps()/1e3, tcp[1].GoodputBps()/1e3,
		(tcp[0].GoodputBps()+tcp[1].GoodputBps())/1e3)
}

func main() {
	fmt.Println("Two upstream TCP flows to a gateway at 1 Mb/s (Fig. 13):")
	run("TCP-noRC", false, optimize.ProportionalFair)
	run("TCP-Max", true, optimize.MaxThroughput)
	run("TCP-Prop", true, optimize.ProportionalFair)
	fmt.Println("\nTCP-noRC starves the 2-hop flow; TCP-Prop trades a little")
	fmt.Println("aggregate throughput to revive it (compare the totals).")
}
