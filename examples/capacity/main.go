// Capacity: online capacity estimation on a lossy link (§5). Shows the
// ground-truth maxUDP throughput, the Eq. 6 estimate driven by the
// channel-loss estimator under interference, and the Ad Hoc Probe
// baseline, which tracks nominal throughput and misses the loss cost.
//
// Run with: go run ./examples/capacity
package main

import (
	"fmt"

	"repro/internal/core/capacity"
	"repro/internal/measure"
	"repro/internal/phy"
	"repro/internal/probe"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/traffic"
)

func main() {
	// An IA pair: link 0->1 is the link under test, link 2->3 is a
	// hidden interferer that corrupts some probes with collisions.
	nw := topology.TwoLink(3, topology.IA, phy.Rate11, phy.Rate11)
	nw.Medium.SetBER(0, 1, 8e-6) // a genuinely lossy channel

	fmt.Println("phase 1: ground truth (backlogged maxUDP, link alone)")
	truth := measure.MaxUDP(nw.Network, nw.Link1, traffic.DefaultPayload, 10*sim.Second)
	fmt.Printf("  maxUDP = %.2f Mb/s, residual loss %.3f\n",
		truth.ThroughputBps/1e6, truth.LossRate)

	fmt.Println("phase 2: online estimation during operation (with interference)")
	rec := probe.NewRecorder(nw.Node(1))
	pr := probe.NewProber(nw.Sim, nw.Node(0), phy.Rate11, traffic.DefaultPayload)
	pr.SetPeriod(100 * sim.Millisecond)
	pr.Start()

	// The interferer is bursty (300 ms bursts every 3 s) — the loss
	// pattern the estimator is designed to filter (§5.3).
	nw.InstallDirectRoute(nw.Link2)
	interferer := traffic.NewCBR(nw.Sim, nw.Node(2), 9, 3, traffic.DefaultPayload, 4e6)
	var cycle func()
	on := false
	cycle = func() {
		if on {
			interferer.Stop()
			nw.Sim.After(2700*sim.Millisecond, cycle)
		} else {
			interferer.Start()
			nw.Sim.After(300*sim.Millisecond, cycle)
		}
		on = !on
	}
	cycle()

	nw.InstallDirectRoute(nw.Link1)
	adhoc := probe.NewAdHocProbe(nw.Sim, nw.Node(0), 1, traffic.DefaultPayload,
		200, 400*sim.Millisecond)
	adhoc.Start(nw.Node(1))

	nw.Sim.Run(nw.Sim.Now() + 140*sim.Second) // fill a 1280-probe window
	pr.Stop()
	interferer.Stop()
	adhoc.Stop()

	est, ok := rec.Estimate(0, 1280)
	if !ok {
		panic("no probes received")
	}
	rawLoss := rec.Trace(0, probe.ClassData, 1280).MeasuredLoss()
	online := capacity.MaxUDP(est.Pl, phy.Rate11, traffic.DefaultPayload)
	nominal := capacity.NominalGoodput(phy.Rate11, traffic.DefaultPayload)

	fmt.Printf("  raw probe loss     %.3f (channel + collisions)\n", rawLoss)
	fmt.Printf("  estimated channel  %.3f (collisions filtered out)\n", est.PData)
	fmt.Printf("  Eq.6 capacity      %.2f Mb/s\n", online/1e6)
	fmt.Printf("  Ad Hoc Probe       %.2f Mb/s\n", adhoc.EstimateBps()/1e6)
	fmt.Printf("  nominal            %.2f Mb/s\n", nominal/1e6)
	fmt.Printf("\nerror vs maxUDP: online %+.0f%%, Ad Hoc Probe %+.0f%%\n",
		100*(online-truth.ThroughputBps)/truth.ThroughputBps,
		100*(adhoc.EstimateBps()-truth.ThroughputBps)/truth.ThroughputBps)
}
