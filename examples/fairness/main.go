// Fairness: sweep the alpha-fair utility parameter on a chain topology
// and show the throughput/fairness trade-off the optimization framework
// exposes (§6): alpha=0 starves long flows for aggregate throughput,
// larger alpha equalizes.
//
// Run with: go run ./examples/fairness
package main

import (
	"fmt"
	"math"

	"repro/internal/core/controller"
	"repro/internal/core/optimize"
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
)

func main() {
	// A 5-node chain; flows of 1, 2 and 4 hops all ending at node 0.
	nw := topology.Chain(11, 5, 70, phy.Rate11)
	flows := []controller.Flow{
		{Src: 1, Dst: 0},
		{Src: 2, Dst: 0},
		{Src: 4, Dst: 0},
	}

	cfg := controller.DefaultConfig(phy.Rate11)
	cfg.ProbePeriod = 100 * sim.Millisecond
	c := controller.New(nw, flows, cfg)
	c.ProbeFullWindow()

	fmt.Println("alpha    y(1-hop) y(2-hop) y(4-hop)  aggregate   Jain")
	for _, alpha := range []float64{0, 0.5, 1, 2, 4, math.Inf(1)} {
		c.SetObjective(optimize.Objective{Alpha: alpha})
		plan, err := c.Compute()
		if err != nil {
			panic(err)
		}
		y := plan.OutputRates
		total := y[0] + y[1] + y[2]
		label := fmt.Sprintf("%5.1f", alpha)
		if math.IsInf(alpha, 1) {
			label = "  inf"
		}
		fmt.Printf("%s   %7.2f  %7.2f  %7.2f   %7.2f   %.3f\n",
			label, y[0]/1e6, y[1]/1e6, y[2]/1e6, total/1e6, stats.JainIndex(y))
	}
	fmt.Println("\nrates in Mb/s. alpha=0 gives all airtime to the cheap 1-hop")
	fmt.Println("flow; alpha=1 is proportional fairness; alpha→inf is max-min.")
}
