// Quickstart: build a small simulated mesh, run one online optimization
// cycle (probe -> estimate -> model -> optimize), and apply the computed
// rate limits to UDP traffic.
//
// Run with: go run ./examples/quickstart
//
// The same workload also exists as data: the scenario registry's
// "quickstart" entry (internal/scenario) declares this chain, its lossy
// link, the two flows and the prop-fair controller as a JSON spec, so
//
//	meshopt run quickstart
//
// executes it through the scenario engine and streams the plan and the
// achieved per-flow goodputs as JSONL records.
package main

import (
	"fmt"

	"repro/internal/core/controller"
	"repro/internal/core/optimize"
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/topology"
)

func main() {
	// A 4-node chain at 11 Mb/s with one slightly lossy middle link.
	nw := topology.Chain(42, 4, 70, phy.Rate11)
	nw.Medium.SetBER(1, 2, 6e-6)

	// Two upstream flows toward node 0: one from the far end (3 hops)
	// and one from the middle (1 hop).
	flows := []controller.Flow{
		{Src: 3, Dst: 0},
		{Src: 1, Dst: 0},
	}

	cfg := controller.DefaultConfig(phy.Rate11)
	cfg.ProbePeriod = 100 * sim.Millisecond // speed up the demo
	cfg.Objective = optimize.ProportionalFair

	c := controller.New(nw, flows, cfg)

	fmt.Println("probing (network-layer broadcast probes)...")
	c.ProbeFullWindow()

	plan, err := c.Compute()
	if err != nil {
		panic(err)
	}

	fmt.Println("\nestimated model:")
	for i, l := range plan.Links {
		fmt.Printf("  link %-7s capacity %6.2f Mb/s  channel loss %.3f\n",
			l, plan.Capacities[i]/1e6, plan.LossRates[i])
	}
	fmt.Printf("  conflict graph: %d links, %d conflicts, %d extreme points\n",
		plan.Graph.N(), plan.Graph.Edges(), plan.Region.K())

	fmt.Println("\nproportional-fair plan:")
	for s, f := range flows {
		fmt.Printf("  flow %d->%d via %v: output %6.2f Mb/s (input limit %6.2f)\n",
			f.Src, f.Dst, plan.FlowPaths[s],
			plan.OutputRates[s]/1e6, plan.InputRates[s]/1e6)
	}

	// Apply the plan with CBR traffic and verify the rates are achieved.
	sources, sinks := c.ApplyUDP(plan)
	nw.Sim.Run(nw.Sim.Now() + 10*sim.Second)
	for _, s := range sources {
		s.Stop()
	}

	fmt.Println("\nachieved over 10 s:")
	for s := range flows {
		got := sinks[s].ThroughputBps(s)
		fmt.Printf("  flow %d: %6.2f Mb/s (%.0f%% of plan)\n",
			s, got/1e6, 100*got/plan.OutputRates[s])
	}
}
